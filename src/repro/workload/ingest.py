"""Streaming ingestion of real cluster traces into the replay JSONL schema.

The paper's own evaluation (§Table 1) replays Facebook and Bing *production*
traces; the closest publicly downloadable equivalents are the Google
cluster-traces (task-events tables) and the Alibaba cluster-trace (batch-task
tables).  This module converts either CSV format into the repo's replay
schema — one ``{"job_id", "arrival_time", "task_durations"}`` object per line
(see :mod:`repro.workload.traces`) — in **one streaming pass**: source rows
are read once, tasks are grouped into jobs with bounded per-job buffering,
and finished jobs are emitted in arrival order the moment no still-open job
could precede them.  The input is never materialised; resident state is
O(concurrently open jobs), never O(trace).

Column mappings (also tabulated in the README):

**Google cluster-traces task events** (``task_events/part-*.csv``; columns by
position, per the format v2 schema):

====== ======================= ==========================================
column field                   use here
====== ======================= ==========================================
0      timestamp (microsecs)   watermark; SCHEDULE = task start,
                               FINISH = task end
2      job ID                  grouping key
3      task index              identifies the task within the job
5      event type              1 = SCHEDULE, 4 = FINISH (produce a
                               duration); 2/3/5/6 = EVICT/FAIL/KILL/LOST
                               (close the attempt, no duration);
                               everything else is skipped
====== ======================= ==========================================

A task duration is ``(FINISH − SCHEDULE) / 1e6`` seconds; a job's arrival is
its first task's SCHEDULE time.  Rows must be sorted by timestamp — the
published trace files are — because the watermark that closes jobs and
orders emissions is the row timestamp.

**Alibaba cluster-trace batch tasks** (``batch_task.csv``, v2018 schema):

====== ============== ====================================================
column field          use here
====== ============== ====================================================
0      task name      identifies the task within the job
1      instance num   the task's duration is emitted once per instance
2      job name       grouping key
4      status         only ``Terminated`` rows produce durations
5      start time (s) watermark; the job's arrival is its earliest start
6      end time (s)   duration = end − start
====== ============== ====================================================

Rows must be sorted by start time (``sort -t, -k6 -n`` the published file
first).  Rows whose status is not ``Terminated``, or whose duration is not
positive, are *skipped* (and counted in :class:`IngestStats`) — real trace
dumps contain such rows and they carry no replayable duration.  Rows that
are structurally malformed — wrong column count, non-numeric fields — raise
:class:`~repro.workload.traces.TraceFormatError` naming ``file:line``,
exactly like the JSONL parser.

Emitted jobs are renumbered ``0, 1, 2, ...`` in arrival order (source job
keys are 64-bit integers in one format and strings in the other; sequential
ids keep the output uniform and collision-free) and arrivals are rebased so
the trace starts at zero.  Because emission is arrival-ordered, the output
satisfies the ``(arrival_time, job_id)`` sort that ``--stream`` /
``--stream-specs`` replay requires — converted traces stream straight into
the bounded-memory pipeline.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from repro.workload.traces import TraceFormatError, TraceJob

#: Supported source formats (the ``--format`` choices of the CLI verb).
INGEST_FORMATS = ("google", "alibaba")

#: Google task-event types that matter here (format v2, column 5).
_GOOGLE_SCHEDULE = 1
#: Terminal event types: FINISH produces a duration, the rest close the
#: attempt without one (evicted/failed/killed work has no useful duration).
_GOOGLE_FINISH = 4
_GOOGLE_TERMINAL = frozenset({2, 3, 4, 5, 6})

#: Default idle gap (seconds) after which a job with no open tasks is closed.
DEFAULT_CLOSE_GAP = 300.0


@dataclass
class IngestStats:
    """Counters from one conversion pass (printed by the CLI verb)."""

    rows_read: int = 0
    #: Rows skipped by policy (non-Terminated status, unknown event type,
    #: non-positive duration) — not errors, but worth surfacing.
    rows_skipped: int = 0
    #: Task starts that never saw a terminal event (trace window cut them off).
    tasks_unfinished: int = 0
    #: Jobs dropped because no task produced a duration.
    jobs_empty: int = 0
    jobs_emitted: int = 0
    tasks_emitted: int = 0

    def rows(self) -> List[Tuple[str, int]]:
        return [
            ("rows read", self.rows_read),
            ("rows skipped", self.rows_skipped),
            ("unfinished task starts", self.tasks_unfinished),
            ("jobs without durations", self.jobs_empty),
            ("jobs emitted", self.jobs_emitted),
            ("tasks emitted", self.tasks_emitted),
        ]


@dataclass
class _OpenJob:
    """Bounded per-job buffer: arrival, completed durations, open starts."""

    arrival: float
    #: Insertion sequence — tie-breaks equal arrivals deterministically.
    seq: int
    durations: List[float] = field(default_factory=list)
    #: Google: task index → SCHEDULE time of the currently open attempt.
    open_starts: Dict[int, float] = field(default_factory=dict)
    last_event: float = 0.0


class _ArrivalOrderEmitter:
    """Groups per-task observations into jobs and emits them in arrival order.

    The streaming core shared by both formats.  Callers push observations
    with a non-decreasing watermark (the source row's timestamp); the
    emitter keeps jobs open while they may still receive tasks, closes a
    job once it has no open task attempts and the watermark has moved
    ``close_gap`` seconds past its last event, and releases closed jobs the
    moment no open job has an earlier ``(arrival, seq)`` key.  Resident
    state is the open jobs (each bounded by its own task count) plus the
    closed-but-blocked heap (bounded by the arrival overlap of the trace).
    """

    def __init__(self, close_gap: float, stats: IngestStats) -> None:
        if close_gap < 0:
            raise ValueError("close_gap must be non-negative")
        self.close_gap = close_gap
        self.stats = stats
        self._open: Dict[object, _OpenJob] = {}
        #: Closed jobs not yet emittable: heap of (arrival, seq, durations).
        self._ready: List[Tuple[float, int, List[float]]] = []
        self._next_seq = 0

    def job(self, key: object, arrival: float) -> _OpenJob:
        """The open buffer for ``key``, created at ``arrival`` if new."""
        entry = self._open.get(key)
        if entry is None:
            entry = _OpenJob(arrival=arrival, seq=self._next_seq)
            self._next_seq += 1
            self._open[key] = entry
        return entry

    def has_job(self, key: object) -> bool:
        return key in self._open

    def _close(self, key: object) -> None:
        entry = self._open.pop(key)
        self.stats.tasks_unfinished += len(entry.open_starts)
        if not entry.durations:
            self.stats.jobs_empty += 1
            return
        heapq.heappush(self._ready, (entry.arrival, entry.seq, entry.durations))

    def advance(self, watermark: float) -> Iterator[Tuple[float, List[float]]]:
        """Close idle jobs and yield every emission the watermark unblocks."""
        closable = [
            key
            for key, entry in self._open.items()
            if not entry.open_starts
            and watermark - entry.last_event >= self.close_gap
        ]
        for key in closable:
            self._close(key)
        yield from self._drain_ready()

    def _drain_ready(self) -> Iterator[Tuple[float, List[float]]]:
        # A closed job may only be emitted once no open job precedes it in
        # (arrival, seq) order — otherwise a still-open earlier job would be
        # emitted out of order later.
        if not self._ready:
            return
        if self._open:
            horizon = min((entry.arrival, entry.seq) for entry in self._open.values())
        else:
            horizon = None
        while self._ready and (horizon is None or self._ready[0][:2] < horizon):
            arrival, _seq, durations = heapq.heappop(self._ready)
            yield arrival, durations

    def finish(self) -> Iterator[Tuple[float, List[float]]]:
        """Close every remaining job (end of input) and drain the heap."""
        for key in list(self._open):
            self._close(key)
        yield from self._drain_ready()


def _split_csv_row(
    path: Path, lineno: int, line: str, min_columns: int
) -> Optional[List[str]]:
    """Split one CSV line, or None for a blank line.

    The cluster-trace CSVs are plain comma-separated (no quoting in the
    columns used here), so a raw split both avoids ``csv`` module state and
    keeps the file:line error attribution exact.
    """
    line = line.strip()
    if not line:
        return None
    columns = line.split(",")
    if len(columns) < min_columns:
        raise TraceFormatError(
            f"{path}:{lineno}: expected at least {min_columns} comma-separated "
            f"columns, got {len(columns)}"
        )
    return columns


def _parse_number(path: Path, lineno: int, name: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise TraceFormatError(
            f"{path}:{lineno}: {name} must be numeric, got {raw!r}"
        ) from None


def _require_sorted(
    path: Path, lineno: int, name: str, previous: float, current: float
) -> None:
    if current < previous:
        raise TraceFormatError(
            f"{path}:{lineno}: {name} went backwards ({current} after {previous}); "
            "the converter streams in one pass and needs a time-sorted file — "
            "sort the CSV by that column first"
        )


def iter_google_jobs(
    path: Union[str, Path],
    close_gap: float = DEFAULT_CLOSE_GAP,
    stats: Optional[IngestStats] = None,
) -> Iterator[Tuple[float, List[float]]]:
    """Stream (arrival_seconds, task_durations) jobs from Google task events.

    One pass, rows required sorted by timestamp (column 0).  A task attempt
    opens at SCHEDULE and produces a duration at FINISH; other terminal
    events close the attempt without one.  A job closes once it has no open
    attempts and the watermark is ``close_gap`` seconds past its last event;
    if a closed job's id reappears the file needs a larger ``close_gap`` and
    the converter says so rather than silently splitting the job.
    """
    path = Path(path)
    stats = stats if stats is not None else IngestStats()
    emitter = _ArrivalOrderEmitter(close_gap, stats)
    seen_keys: set = set()  # O(#jobs) ids, mirroring iter_trace's duplicate guard
    previous_time = float("-inf")
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            columns = _split_csv_row(path, lineno, line, min_columns=6)
            if columns is None:
                continue
            stats.rows_read += 1
            time_us = _parse_number(path, lineno, "timestamp", columns[0])
            _require_sorted(path, lineno, "timestamp", previous_time, time_us)
            previous_time = time_us
            event_type = int(_parse_number(path, lineno, "event type", columns[5]))
            time_s = time_us / 1e6
            if event_type != _GOOGLE_SCHEDULE and event_type not in _GOOGLE_TERMINAL:
                stats.rows_skipped += 1
                yield from emitter.advance(time_s)
                continue
            job_key = columns[2]
            if not job_key:
                raise TraceFormatError(f"{path}:{lineno}: empty job ID")
            task_index = int(_parse_number(path, lineno, "task index", columns[3]))
            if job_key in seen_keys and not emitter.has_job(job_key):
                raise TraceFormatError(
                    f"{path}:{lineno}: job {job_key} reappeared after being "
                    f"closed by the {close_gap:.0f}s idle gap; rerun with a "
                    "larger --close-gap"
                )
            entry = emitter.job(job_key, arrival=time_s)
            entry.last_event = time_s
            if event_type == _GOOGLE_SCHEDULE:
                # A re-schedule of the same index replaces the open attempt
                # (the trace re-schedules evicted work under the same index).
                if task_index in entry.open_starts:
                    stats.tasks_unfinished += 1
                entry.open_starts[task_index] = time_s
            else:
                started = entry.open_starts.pop(task_index, None)
                if started is None:
                    stats.rows_skipped += 1  # terminal event without a start
                elif event_type == _GOOGLE_FINISH:
                    duration = time_s - started
                    if duration > 0:
                        entry.durations.append(round(duration, 4))
                    else:
                        stats.rows_skipped += 1
                else:
                    stats.tasks_unfinished += 1
            seen_keys.add(job_key)
            yield from emitter.advance(time_s)
    yield from emitter.finish()


def iter_alibaba_jobs(
    path: Union[str, Path],
    close_gap: float = DEFAULT_CLOSE_GAP,
    stats: Optional[IngestStats] = None,
) -> Iterator[Tuple[float, List[float]]]:
    """Stream (arrival_seconds, task_durations) jobs from Alibaba batch tasks.

    One pass, rows required sorted by start time (column 5).  Each
    ``Terminated`` row contributes its ``end − start`` duration once per
    instance; a job closes once the start-time watermark moves ``close_gap``
    seconds past the job's last row.
    """
    path = Path(path)
    stats = stats if stats is not None else IngestStats()
    emitter = _ArrivalOrderEmitter(close_gap, stats)
    seen_keys: set = set()  # O(#jobs) ids, mirroring iter_trace's duplicate guard
    previous_start = float("-inf")
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            columns = _split_csv_row(path, lineno, line, min_columns=7)
            if columns is None:
                continue
            stats.rows_read += 1
            start = _parse_number(path, lineno, "start time", columns[5])
            _require_sorted(path, lineno, "start time", previous_start, start)
            previous_start = start
            job_key = columns[2]
            if not job_key:
                raise TraceFormatError(f"{path}:{lineno}: empty job name")
            if job_key in seen_keys and not emitter.has_job(job_key):
                raise TraceFormatError(
                    f"{path}:{lineno}: job {job_key} reappeared after being "
                    f"closed by the {close_gap:.0f}s idle gap; rerun with a "
                    "larger --close-gap"
                )
            status = columns[4]
            instances = int(_parse_number(path, lineno, "instance num", columns[1]))
            end = _parse_number(path, lineno, "end time", columns[6])
            entry = emitter.job(job_key, arrival=start)
            entry.last_event = start
            seen_keys.add(job_key)
            duration = end - start
            if status != "Terminated" or duration <= 0 or instances < 1:
                stats.rows_skipped += 1
            else:
                entry.durations.extend([round(duration, 4)] * instances)
            yield from emitter.advance(start)
    yield from emitter.finish()


_FORMAT_READERS = {
    "google": iter_google_jobs,
    "alibaba": iter_alibaba_jobs,
}


def iter_ingested_trace(
    source_format: str,
    path: Union[str, Path],
    limit_jobs: Optional[int] = None,
    window: Optional[Tuple[float, float]] = None,
    close_gap: float = DEFAULT_CLOSE_GAP,
    stats: Optional[IngestStats] = None,
) -> Iterator[TraceJob]:
    """Stream :class:`TraceJob` records converted from a source CSV.

    Jobs come out renumbered sequentially in arrival order with arrivals
    rebased to the trace's first job.  ``window=(start, end)`` keeps only
    jobs whose rebased arrival falls in ``[start, end)``; ``limit_jobs``
    stops after that many emitted jobs (the source file is not read further
    — combined with the streaming grouping, converting the first thousand
    jobs of a multi-gigabyte trace reads only its head).  Counters accumulate
    into ``stats`` when given.
    """
    if source_format not in _FORMAT_READERS:
        raise ValueError(
            f"unknown ingest format {source_format!r}; "
            f"expected one of {', '.join(INGEST_FORMATS)}"
        )
    if limit_jobs is not None and limit_jobs < 1:
        raise ValueError("limit_jobs must be at least 1")
    if window is not None:
        start, end = window
        if not 0 <= start < end:
            raise ValueError("window must satisfy 0 <= start < end")
    stats = stats if stats is not None else IngestStats()
    reader = _FORMAT_READERS[source_format]
    base_arrival: Optional[float] = None
    next_id = 0
    for arrival, durations in reader(path, close_gap=close_gap, stats=stats):
        if base_arrival is None:
            base_arrival = arrival
        rebased = arrival - base_arrival
        if window is not None:
            if rebased < window[0]:
                continue
            if rebased >= window[1]:
                break
        job = TraceJob(
            job_id=next_id, arrival_time=rebased, task_durations=durations
        )
        next_id += 1
        stats.jobs_emitted += 1
        stats.tasks_emitted += len(durations)
        yield job
        if limit_jobs is not None and next_id >= limit_jobs:
            break


def _write_job(handle: TextIO, job: TraceJob) -> None:
    record = {
        "job_id": job.job_id,
        "arrival_time": job.arrival_time,
        "task_durations": job.task_durations,
    }
    handle.write(json.dumps(record) + "\n")


def ingest_trace(
    source_format: str,
    input_path: Union[str, Path],
    output_path: Union[str, Path],
    limit_jobs: Optional[int] = None,
    window: Optional[Tuple[float, float]] = None,
    close_gap: float = DEFAULT_CLOSE_GAP,
) -> IngestStats:
    """Convert a source CSV to replay JSONL, streaming end to end.

    Each converted job is written the moment it is emitted, so neither the
    input rows nor the output jobs are ever materialised.  Returns the
    conversion counters.  Raises :class:`TraceFormatError` (naming
    ``file:line``) on malformed rows and ``ValueError`` when the conversion
    produced no jobs at all — an empty output would only fail later, in
    replay, with a less actionable message.
    """
    stats = IngestStats()
    output_path = Path(output_path)
    jobs = iter_ingested_trace(
        source_format,
        input_path,
        limit_jobs=limit_jobs,
        window=window,
        close_gap=close_gap,
        stats=stats,
    )
    with output_path.open("w", encoding="utf-8") as handle:
        for job in jobs:
            _write_job(handle, job)
    if stats.jobs_emitted == 0:
        output_path.unlink(missing_ok=True)
        raise ValueError(
            f"no replayable jobs found in {input_path} "
            f"({stats.rows_read} rows read, {stats.rows_skipped} skipped); "
            "check the --format, --window and --close-gap choices"
        )
    return stats

"""Trace-driven replay: adapt JSONL traces into engine-ready workloads.

The paper's evaluation (§5, §6) replays Facebook and Bing production traces
through the prototype; this module is the reproduction's equivalent.  A
:class:`~repro.workload.traces.TraceJob` records *observed* per-task
durations, so replay has to answer three questions the synthetic generator
answers by construction:

* **Bounds** — traces do not record deadlines or error bounds.  Replay
  assigns them with the §6.1 recipe (deadline = ideal duration plus a small
  slack; error bound drawn from a range), using a per-job RNG stream derived
  only from ``(seed, job_id)`` so the assignment is independent of how the
  trace is sharded or which policy replays it.
* **Stragglers** — observed durations already include straggling.  Replay
  treats them as task *works* and re-draws runtime multipliers from the
  framework's straggler model, with the Pareto truncation cap set to the
  trace's observed mean slowest-to-median ratio (the §2.2 statistic), so the
  replayed severity matches the trace rather than the profile's default.
* **Scale-out** — a full-length trace is split into arrival-window shards
  (:func:`slice_trace`); each (policy, shard) pair is an independent
  simulation that :func:`repro.experiments.runner.replay` fans over the
  :class:`~repro.experiments.executor.ParallelExecutor`.

Because per-job seeding depends only on the job id, a job gets the same
bound, slot cap and intermediate phases whether it is replayed in the full
trace or inside any shard — which is what makes the sharded merge
deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from itertools import islice
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.bounds import ApproximationBound
from repro.core.job import JobPhaseSpec, JobSpec
from repro.simulator.stragglers import StragglerConfig, StragglerModel
from repro.utils.rng import RngStream
from repro.utils.stats import mean
from repro.workload.synthetic import (
    BOUND_DEADLINE,
    BOUND_ERROR,
    BOUND_EXACT,
    BOUND_MIXED,
    GeneratedWorkload,
    JobMetadata,
    WorkloadConfig,
    generate_workload,
    target_waves,
    validate_workload_knobs,
)
from repro.workload.traces import (
    TraceJob,
    TraceSummary,
    iter_trace,
    save_trace,
    summarize_trace,
    trace_from_specs,
)


@dataclass(frozen=True)
class TraceReplayConfig:
    """How a trace is turned into an engine workload.

    ``framework`` picks the execution profile (straggler shape, estimator
    noise, machine speeds); bounds are assigned per job from the given
    ranges, exactly like the synthetic generator's §6.1 recipe.  ``seed``
    drives every stochastic choice through per-job streams, so two replays
    of the same trace with the same config are identical.
    """

    framework: str = "hadoop"
    bound_kind: str = BOUND_MIXED
    deadline_slack_range: Tuple[float, float] = (0.02, 0.20)
    error_range: Tuple[float, float] = (0.05, 0.30)
    dag_length: int = 2
    intermediate_task_fraction: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        validate_workload_knobs(
            self.bound_kind,
            self.dag_length,
            self.intermediate_task_fraction,
            self.deadline_slack_range,
            self.error_range,
        )


@dataclass
class TraceWorkload:
    """A trace adapted for the engine, with its replay provenance.

    ``workload`` plugs into everything downstream of the synthetic generator
    (``RunRequest``, ``build_simulation_config``, the metrics harness);
    ``stragglers`` is the trace-calibrated straggler model replay runs under;
    ``summary`` keeps the Table 1 statistics of the source records.
    """

    workload: GeneratedWorkload
    stragglers: StragglerConfig
    summary: TraceSummary
    shard_index: int = 0
    num_shards: int = 1

    def __len__(self) -> int:
        return len(self.workload)


def straggler_cap_from_ratio(mean_ratio: float) -> float:
    """Straggler truncation cap for an observed mean slowest/median ratio.

    The cap must exceed the multiplier's median (1.0), so traces with no
    observed straggling still yield a valid — nearly degenerate — model.
    Shared by the batch path (:func:`observed_straggler_cap`) and the
    streaming calibration pre-pass (``TraceScan``), so both derive the same
    cap from the same statistic.
    """
    return max(1.05, mean_ratio)


def observed_straggler_cap(trace: Sequence[TraceJob]) -> float:
    """Straggler truncation cap matching the trace's slowest/median ratio.

    Raises a clear ``ValueError`` on an empty trace (mirroring
    ``traces.scan_trace``) instead of leaking ``stats.mean``'s bare
    "mean of an empty sequence is undefined".
    """
    if not trace:
        raise ValueError("cannot calibrate stragglers for an empty trace")
    return straggler_cap_from_ratio(mean([job.slowest_to_median_ratio for job in trace]))


def replay_straggler_config(
    trace: Sequence[TraceJob], base: StragglerConfig
) -> StragglerConfig:
    """The framework's straggler model, truncated at the observed severity."""
    return replace(base, cap=observed_straggler_cap(trace))


def _job_spec_from_trace(
    job: TraceJob, config: TraceReplayConfig, arrival_time: float
) -> Tuple[JobSpec, JobMetadata]:
    """Adapt one trace record into a JobSpec plus harness metadata.

    The RNG stream is derived from ``(config.seed, job.job_id)`` alone — not
    from the job's position in the trace — so sharding never changes a job's
    bound, slot cap or intermediate phases.
    """
    rng = RngStream(config.seed, "trace-replay").spawn(f"job/{job.job_id}")
    waves = target_waves(rng, job.size_bin)
    max_slots = max(1, math.ceil(job.num_tasks / waves))

    phases = [JobPhaseSpec(phase_index=0, task_works=tuple(job.task_durations))]
    median_duration = job.median_duration
    for phase_index in range(1, config.dag_length):
        count = max(1, int(round(config.intermediate_task_fraction * job.num_tasks)))
        phases.append(
            JobPhaseSpec(
                phase_index=phase_index,
                task_works=tuple(
                    median_duration * rng.uniform(0.5, 1.5) for _ in range(count)
                ),
            )
        )

    spec = JobSpec(
        job_id=job.job_id,
        arrival_time=arrival_time,
        phases=tuple(phases),
        bound=ApproximationBound.exact(),  # replaced below once ideal is known
        name=f"trace-{job.size_bin}-{job.job_id}",
        max_slots=max_slots,
    )
    ideal = spec.ideal_duration(max_slots)
    metadata = JobMetadata(
        job_id=job.job_id,
        size_bin=job.size_bin,
        num_input_tasks=job.num_tasks,
        target_waves=waves,
        ideal_duration=ideal,
    )

    kind = config.bound_kind
    if kind == BOUND_MIXED:
        kind = BOUND_DEADLINE if rng.bernoulli(0.5) else BOUND_ERROR
    if kind == BOUND_DEADLINE:
        low, high = config.deadline_slack_range
        slack = rng.uniform(low, high)
        metadata.deadline_slack_percent = slack * 100.0
        bound = ApproximationBound.with_deadline(ideal * (1.0 + slack))
    elif kind == BOUND_EXACT:
        metadata.error_percent = 0.0
        bound = ApproximationBound.exact()
    else:
        low, high = config.error_range
        error = rng.uniform(low, high)
        metadata.error_percent = error * 100.0
        bound = ApproximationBound.with_error(error)

    return replace(spec, bound=bound), metadata


def trace_to_workload(
    trace: Sequence[TraceJob],
    config: Optional[TraceReplayConfig] = None,
    *,
    name: str = "trace",
    shard_index: int = 0,
    num_shards: int = 1,
    stragglers: Optional[StragglerConfig] = None,
) -> TraceWorkload:
    """Adapt trace records into the JobSpec stream the engine consumes.

    Arrivals are rebased so the shard's first job arrives at time zero
    (shards replay concurrently, each as its own simulation).  Pass
    ``stragglers`` to pin the straggler model — the sharded path does this so
    every shard replays under the *full* trace's observed severity rather
    than its own slice's.
    """
    config = config or TraceReplayConfig()
    if not trace:
        raise ValueError("cannot replay an empty trace")
    seen_ids = set()
    for job in trace:
        if job.job_id in seen_ids:
            raise ValueError(f"duplicate job_id {job.job_id} in trace")
        seen_ids.add(job.job_id)

    ordered = sorted(trace, key=lambda job: (job.arrival_time, job.job_id))
    # Provenance stand-in: ``workload`` records the trace name, which is not
    # a profile name — ``framework_profile`` (the only profile downstream
    # code reads for replay) stays valid, but ``workload_profile`` would not
    # resolve, which is correct: a replayed trace has no synthetic profile.
    stand_in = WorkloadConfig(
        workload=name,
        framework=config.framework,
        num_jobs=len(ordered),
        bound_kind=config.bound_kind,
        seed=config.seed,
        dag_length=config.dag_length,
        intermediate_task_fraction=config.intermediate_task_fraction,
        deadline_slack_range=config.deadline_slack_range,
        error_range=config.error_range,
    )
    workload = GeneratedWorkload(config=stand_in)
    # Materialise through the streaming adapter so the batch and lazy paths
    # cannot drift: byte-identical specs are structural, not a convention.
    workload.job_specs.extend(
        iter_job_specs(ordered, config, metadata=workload.metadata)
    )

    if stragglers is None:
        stragglers = replay_straggler_config(
            trace, stand_in.framework_profile.stragglers
        )
    return TraceWorkload(
        workload=workload,
        stragglers=stragglers,
        summary=summarize_trace(ordered, name=name),
        shard_index=shard_index,
        num_shards=num_shards,
    )


def iter_job_specs(
    jobs: Iterable[TraceJob],
    config: Optional[TraceReplayConfig] = None,
    *,
    metadata: Optional[dict] = None,
) -> Iterator[JobSpec]:
    """Lazily adapt arrival-ordered trace records into engine ``JobSpec``\\ s.

    The streaming twin of :func:`trace_to_workload`'s spec loop: one
    ``TraceJob`` in, one ``JobSpec`` out, so a million-job trace never has to
    exist as a spec list.  Specs are byte-identical to the materialised
    path's — the per-job RNG stream is derived from ``(config.seed, job_id)``
    alone, and arrivals are rebased so the stream's first job arrives at
    time zero, exactly as :func:`trace_to_workload` rebases to its ordered
    first job (callers must therefore feed jobs in ``(arrival_time, job_id)``
    order; the engine validates the resulting spec order).

    Pass a ``metadata`` dict to also collect each job's
    :class:`~repro.workload.synthetic.JobMetadata` (O(#jobs) small records,
    never task payloads) for figure-style breakdowns.
    """
    config = config or TraceReplayConfig()
    base_arrival: Optional[float] = None
    for job in jobs:
        if base_arrival is None:
            base_arrival = job.arrival_time
        spec, job_metadata = _job_spec_from_trace(
            job, config, arrival_time=job.arrival_time - base_arrival
        )
        if metadata is not None:
            metadata[spec.job_id] = job_metadata
        yield spec


@dataclass(frozen=True)
class TraceSpecSource:
    """A lazy, picklable description of one arrival-window shard's specs.

    Executor run requests carry this instead of a materialised spec list:
    plain data (a path plus replay coordinates), it crosses the process
    boundary for free and the *worker* re-opens the trace, skips to its
    window and feeds :func:`iter_job_specs` straight into the engine's lazy
    ingestion — no process ever holds the shard's specs at once.

    ``num_shards == 1`` describes the whole trace (the unsharded million-job
    replay this source exists for).  The trace file must be sorted by
    ``(arrival_time, job_id)`` — the caller (``runner.replay_stream``)
    verifies that with the calibration scan before building sources.
    """

    trace_path: str
    replay_config: TraceReplayConfig
    shard_index: int
    num_shards: int
    total_jobs: int

    def __post_init__(self) -> None:
        if not 0 <= self.shard_index < self.num_shards:
            raise ValueError("shard_index must lie in [0, num_shards)")
        if self.total_jobs < self.num_shards:
            raise ValueError("cannot cut more shards than the trace has jobs")

    @property
    def num_jobs(self) -> int:
        """Job count of this shard (same boundaries as :func:`slice_trace`)."""
        return shard_sizes(self.total_jobs, self.num_shards)[self.shard_index]

    def iter_specs(self) -> Iterator[JobSpec]:
        """Lazily parse this shard's window and adapt it spec by spec."""
        sizes = shard_sizes(self.total_jobs, self.num_shards)
        start = sum(sizes[: self.shard_index])
        window = islice(iter_trace(self.trace_path), start, start + sizes[self.shard_index])
        return iter_job_specs(window, self.replay_config)

    def __str__(self) -> str:
        return (
            f"trace-shard[{self.shard_index + 1}/{self.num_shards}] "
            f"of {Path(self.trace_path).name} ({self.num_jobs} jobs)"
        )


def shard_sizes(total_jobs: int, num_shards: int) -> List[int]:
    """Job counts of each arrival-window shard for a trace of ``total_jobs``.

    The single definition of shard boundaries: :func:`slice_trace` (batch)
    and :func:`iter_trace_shards` (streaming) both cut windows of these
    sizes, which is what makes a streamed replay's shard split — and hence
    its metrics digest — identical to the batch path's at the same shard
    count.  Shard counts larger than the trace collapse to one job per
    shard; no shard is ever empty.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if total_jobs < 1:
        raise ValueError("cannot shard an empty trace")
    num_shards = min(num_shards, total_jobs)
    base, extra = divmod(total_jobs, num_shards)
    return [base + (1 if index < extra else 0) for index in range(num_shards)]


def slice_trace(trace: Sequence[TraceJob], num_shards: int) -> List[List[TraceJob]]:
    """Split a trace into arrival-contiguous windows of near-equal job count.

    Jobs are ordered by arrival time and cut into ``num_shards`` contiguous
    windows, so each shard covers one span of the trace's arrival timeline.
    """
    if not trace:
        raise ValueError("cannot slice an empty trace")
    ordered = sorted(trace, key=lambda job: (job.arrival_time, job.job_id))
    shards: List[List[TraceJob]] = []
    start = 0
    for size in shard_sizes(len(ordered), num_shards):
        shards.append(ordered[start : start + size])
        start += size
    return shards


def iter_trace_shards(
    jobs: Iterable[TraceJob], num_shards: int, total_jobs: int
) -> Iterator[List[TraceJob]]:
    """Lazily cut an arrival-ordered job stream into batch-identical shards.

    The streaming twin of :func:`slice_trace`: given the trace's total job
    count (from the calibration pre-pass, ``traces.scan_trace``) the shard
    boundaries are known up front, so shards can be materialised one at a
    time — shard ``k+1`` is only parsed once the consumer asks for it, which
    is what lets shard ``k`` simulate while ``k+1`` is still on disk.

    The stream must be sorted by ``(arrival_time, job_id)`` — the order
    :func:`slice_trace` sorts into — or the cut windows would differ from
    the batch path's; an out-of-order record raises ``ValueError``.  The
    stream must also contain exactly ``total_jobs`` jobs.
    """
    iterator = iter(jobs)
    previous_key = None
    produced = 0
    for size in shard_sizes(total_jobs, num_shards):
        shard: List[TraceJob] = []
        for _ in range(size):
            job = next(iterator, None)
            if job is None:
                raise ValueError(
                    f"trace stream ended after {produced} jobs; expected {total_jobs}"
                )
            key = (job.arrival_time, job.job_id)
            if previous_key is not None and key < previous_key:
                raise ValueError(
                    "streaming shards require an arrival-sorted trace "
                    f"(job {job.job_id} arrives at {job.arrival_time} after a later key)"
                )
            previous_key = key
            shard.append(job)
            produced += 1
        yield shard
    if next(iterator, None) is not None:
        raise ValueError(f"trace stream has more than the expected {total_jobs} jobs")


# ---------------------------------------------------------- cluster-scale tier


@dataclass(frozen=True)
class ClusterTierConfig:
    """The ``scale=cluster`` synthetic tier: ~a million jobs, generated lazily.

    The fixture traces in ``traces/`` are 40 jobs; the paper's own traces are
    575K/500K (§Table 1).  This tier closes the *scale* gap: a seeded
    generator that yields :class:`~repro.workload.traces.TraceJob` records
    one at a time, byte-reproducible for a given config, so an
    ``iter_trace``-shaped source can feed ``--stream-specs --sink aggregate``
    replay at six orders of magnitude without any file or list ever holding
    the trace.

    Every job is generated **independently** from ``(seed, job index)``
    (:func:`cluster_trace_job` is random-access), which is what lets a shard
    regenerate exactly its own window without generating its predecessors —
    the same property the per-job bound RNG gives replay.

    The size model is a log-normal over task counts, binned by the same
    small/medium/large thresholds as the Facebook/Bing fixtures: with the
    defaults the mix is roughly 94% small, 6% medium and a 0.1% large tail
    (cluster traces are dominated by small jobs), keeping a million-job
    replay's event count tolerable.  Durations get log-normal jitter around
    ``median_task_duration`` plus an occasional straggler inflation so the
    calibration pre-pass derives a meaningful straggler cap, exactly as it
    would from a real trace.
    """

    num_jobs: int = 1_000_000
    seed: int = 0
    #: Mean seconds between consecutive arrivals.  Arrivals are strictly
    #: increasing by construction: job ``i`` arrives at ``i * mean`` plus a
    #: jitter drawn from ``[0, 0.9 * mean)``.
    mean_interarrival: float = 5.0
    #: Median of the log-normal task-count distribution.
    median_tasks: float = 4.0
    #: Sigma of the log-normal task-count distribution.
    tasks_sigma: float = 1.6
    max_tasks_per_job: int = 2000
    #: Median observed task duration (seconds) before jitter/straggling.
    median_task_duration: float = 12.0
    duration_sigma: float = 0.35
    #: Fraction of tasks inflated by a straggler multiplier in [2, 8).
    straggler_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be at least 1")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.median_tasks < 1 or self.max_tasks_per_job < 1:
            raise ValueError("task-count knobs must be at least 1")
        if self.tasks_sigma < 0 or self.duration_sigma < 0:
            raise ValueError("sigmas must be non-negative")
        if not 0.0 <= self.straggler_fraction <= 1.0:
            raise ValueError("straggler_fraction must lie in [0, 1]")

    def __str__(self) -> str:
        return f"cluster:{self.num_jobs} (seed {self.seed})"


def cluster_trace_job(config: ClusterTierConfig, index: int) -> TraceJob:
    """Generate job ``index`` of the cluster tier — random access, no state.

    The per-job RNG stream is derived from ``(config.seed, index)`` alone, so
    any slice of the tier regenerates byte-identically in any process.
    """
    if not 0 <= index < config.num_jobs:
        raise ValueError(f"job index {index} outside [0, {config.num_jobs})")
    rng = RngStream(config.seed, "cluster-tier").spawn(f"job/{index}")
    arrival = index * config.mean_interarrival + rng.uniform(
        0.0, 0.9 * config.mean_interarrival
    )
    num_tasks = min(
        config.max_tasks_per_job,
        max(1, int(round(rng.lognormal(math.log(config.median_tasks), config.tasks_sigma)))),
    )
    durations = []
    for _ in range(num_tasks):
        duration = config.median_task_duration * rng.lognormal(
            0.0, config.duration_sigma
        )
        if rng.random() < config.straggler_fraction:
            duration *= rng.uniform(2.0, 8.0)
        durations.append(round(duration, 4))
    return TraceJob(job_id=index, arrival_time=arrival, task_durations=durations)


def iter_cluster_trace(
    config: ClusterTierConfig, start: int = 0, stop: Optional[int] = None
) -> Iterator[TraceJob]:
    """Lazily yield the cluster tier's jobs for ``[start, stop)``.

    O(1) memory: each job is generated, yielded, and dropped.  Arrivals are
    strictly increasing in the index (the jitter never spans an interarrival
    gap), so the stream satisfies the ``(arrival_time, job_id)`` sort every
    streaming consumer requires, and duplicate ids are impossible by
    construction — no seen-id set is needed, unlike :func:`iter_trace`.
    """
    stop = config.num_jobs if stop is None else min(stop, config.num_jobs)
    for index in range(start, stop):
        yield cluster_trace_job(config, index)


@dataclass(frozen=True)
class ClusterSpecSource:
    """A lazy, picklable description of one cluster-tier shard's specs.

    The generated-trace twin of :class:`TraceSpecSource`: instead of a path
    plus a window, it carries the tier config plus shard coordinates, and
    the executing worker regenerates exactly its own window (random-access
    generation — no predecessor jobs are ever produced) straight into the
    engine's lazy spec ingestion.
    """

    tier: ClusterTierConfig
    replay_config: TraceReplayConfig
    shard_index: int
    num_shards: int

    def __post_init__(self) -> None:
        if not 0 <= self.shard_index < self.num_shards:
            raise ValueError("shard_index must lie in [0, num_shards)")
        if self.tier.num_jobs < self.num_shards:
            raise ValueError("cannot cut more shards than the tier has jobs")

    @property
    def num_jobs(self) -> int:
        """Job count of this shard (same boundaries as :func:`slice_trace`)."""
        return shard_sizes(self.tier.num_jobs, self.num_shards)[self.shard_index]

    def iter_specs(self) -> Iterator[JobSpec]:
        """Regenerate this shard's window and adapt it spec by spec."""
        sizes = shard_sizes(self.tier.num_jobs, self.num_shards)
        start = sum(sizes[: self.shard_index])
        window = iter_cluster_trace(
            self.tier, start=start, stop=start + sizes[self.shard_index]
        )
        return iter_job_specs(window, self.replay_config)

    def __str__(self) -> str:
        return (
            f"cluster-shard[{self.shard_index + 1}/{self.num_shards}] "
            f"of {self.tier} ({self.num_jobs} jobs)"
        )


# --------------------------------------------------------------- synthesizer


def synthesize_trace(
    workload: str = "facebook",
    framework: str = "hadoop",
    num_jobs: int = 100,
    size_scale: float = 0.25,
    max_tasks_per_job: Optional[int] = 400,
    seed: int = 7,
) -> List[TraceJob]:
    """Synthesize a paper-shaped trace (observed durations, not raw works).

    The real Facebook/Bing traces are proprietary, so the repo ships
    synthetic look-alikes instead: a calibrated workload is generated and
    each task's duration is inflated by the framework's straggler multiplier
    for its first copy — the same "observed duration" construction Table 1
    uses.  Durations are rounded to 4 decimals to keep JSONL fixtures small;
    the precision is far below anything the simulator is sensitive to.
    """
    config = WorkloadConfig(
        workload=workload,
        framework=framework,
        num_jobs=num_jobs,
        size_scale=size_scale,
        max_tasks_per_job=max_tasks_per_job,
        seed=seed,
    )
    generated = generate_workload(config)
    straggler = StragglerModel(config.framework_profile.stragglers, seed=seed)
    trace = trace_from_specs(generated.specs())
    for job in trace:
        job.task_durations = [
            round(duration * straggler.multiplier(job.job_id, index, 0), 4)
            for index, duration in enumerate(job.task_durations)
        ]
    return trace


def export_trace(
    path: Union[str, Path],
    workload: str = "facebook",
    framework: str = "hadoop",
    num_jobs: int = 100,
    size_scale: float = 0.25,
    max_tasks_per_job: Optional[int] = 400,
    seed: int = 7,
) -> TraceSummary:
    """Synthesize a trace, write it as JSONL, and return its summary."""
    trace = synthesize_trace(
        workload=workload,
        framework=framework,
        num_jobs=num_jobs,
        size_scale=size_scale,
        max_tasks_per_job=max_tasks_per_job,
        seed=seed,
    )
    save_trace(trace, path)
    return summarize_trace(trace, name=f"{workload}-like")

"""Trace records and summaries (the Table 1 stand-in).

Real production traces are proprietary, so the "traces" this module handles
are either (a) summaries of synthetic workloads, used to verify the synthetic
mix matches the published statistics, or (b) user-supplied JSON-lines files
in the simple schema below, should someone want to replay their own cluster:

    {"job_id": 1, "arrival_time": 0.0, "task_durations": [12.5, 9.1, ...]}
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Union

from repro.core.job import JobSpec, job_bin_label
from repro.utils.stats import mean, median, percentile


class TraceFormatError(ValueError):
    """Raised when a JSONL trace file is malformed (bad JSON, bad fields)."""


@dataclass
class TraceJob:
    """One job of a trace: arrival time and its task durations."""

    job_id: int
    arrival_time: float
    task_durations: List[float]

    def __post_init__(self) -> None:
        if not math.isfinite(self.arrival_time) or self.arrival_time < 0:
            raise ValueError("arrival_time must be finite and non-negative")
        if not self.task_durations:
            raise ValueError("a trace job needs at least one task")
        if any(
            not math.isfinite(duration) or duration <= 0
            for duration in self.task_durations
        ):
            raise ValueError("task durations must be finite and positive")

    @property
    def num_tasks(self) -> int:
        return len(self.task_durations)

    @property
    def size_bin(self) -> str:
        return job_bin_label(self.num_tasks)

    @property
    def median_duration(self) -> float:
        return median(self.task_durations)

    @property
    def slowest_to_median_ratio(self) -> float:
        """The straggler severity statistic the paper quotes (~8x, §2.2)."""
        med = self.median_duration
        if med <= 0:
            return 1.0
        return max(self.task_durations) / med


@dataclass
class TraceSummary:
    """Aggregate trace statistics in the spirit of Table 1."""

    name: str
    num_jobs: int
    num_tasks: int
    bin_counts: Dict[str, int]
    median_task_duration: float
    p95_task_duration: float
    mean_slowest_to_median: float
    mean_tasks_per_job: float

    def rows(self) -> List[Sequence[Union[str, float, int]]]:
        """Rows suitable for printing as a small table."""
        return [
            ("trace", self.name),
            ("jobs", self.num_jobs),
            ("tasks", self.num_tasks),
            ("small jobs (<50 tasks)", self.bin_counts.get("small", 0)),
            ("medium jobs (51-500)", self.bin_counts.get("medium", 0)),
            ("large jobs (>500)", self.bin_counts.get("large", 0)),
            ("mean tasks per job", round(self.mean_tasks_per_job, 1)),
            ("median task duration (s)", round(self.median_task_duration, 2)),
            ("p95 task duration (s)", round(self.p95_task_duration, 2)),
            ("mean slowest/median task", round(self.mean_slowest_to_median, 2)),
        ]


def trace_from_specs(job_specs: Iterable[JobSpec]) -> List[TraceJob]:
    """Build trace records from generated job specs (input-phase works)."""
    trace = []
    for spec in job_specs:
        trace.append(
            TraceJob(
                job_id=spec.job_id,
                arrival_time=spec.arrival_time,
                task_durations=list(spec.input_phase.task_works),
            )
        )
    return trace


def summarize_trace(trace: Sequence[TraceJob], name: str = "synthetic") -> TraceSummary:
    """Compute Table 1 style statistics for a trace."""
    if not trace:
        raise ValueError("cannot summarise an empty trace")
    bin_counts: Dict[str, int] = {"small": 0, "medium": 0, "large": 0}
    all_durations: List[float] = []
    ratios: List[float] = []
    for job in trace:
        bin_counts[job.size_bin] += 1
        all_durations.extend(job.task_durations)
        ratios.append(job.slowest_to_median_ratio)
    return TraceSummary(
        name=name,
        num_jobs=len(trace),
        num_tasks=len(all_durations),
        bin_counts=bin_counts,
        median_task_duration=median(all_durations),
        p95_task_duration=percentile(all_durations, 95.0),
        mean_slowest_to_median=mean(ratios),
        mean_tasks_per_job=mean([float(job.num_tasks) for job in trace]),
    )


def save_trace(trace: Sequence[TraceJob], path: Union[str, Path]) -> None:
    """Write a trace as JSON-lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for job in trace:
            record = {
                "job_id": job.job_id,
                "arrival_time": job.arrival_time,
                "task_durations": job.task_durations,
            }
            handle.write(json.dumps(record) + "\n")


def iter_trace(path: Union[str, Path]) -> Iterator[TraceJob]:
    """Lazily parse a JSON-lines trace, one :class:`TraceJob` at a time.

    The streaming twin of :func:`load_trace`: jobs are yielded as their lines
    are read, so a trace never has to fit in memory at once.  The streaming
    parse enforces the same duplicate-job-id guard ``load_trace`` enforces —
    ``--stream``/``--stream-specs`` replay must reject the same malformed
    traces batch replay rejects.  The guard's seen-id set is the only state
    that grows with the file: O(#jobs) integers, never task payloads (a
    1M-job trace costs ~30 MB of ids — bounded-by-ids, not O(1); generated
    sources whose ids are sequential by construction skip it entirely).
    Blank lines are skipped.
    Anything else that is not a well-formed record — invalid JSON, a
    non-object line, missing or non-numeric fields, values :class:`TraceJob`
    rejects, duplicated job ids — raises :class:`TraceFormatError` naming
    the file and line.
    """
    path = Path(path)
    seen_ids: set = set()
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise TraceFormatError(
                    f"{path}:{lineno}: expected a JSON object, got {type(record).__name__}"
                )
            try:
                job = TraceJob(
                    job_id=int(record["job_id"]),
                    arrival_time=float(record["arrival_time"]),
                    task_durations=[float(d) for d in record["task_durations"]],
                )
            except KeyError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: missing field {exc.args[0]!r}"
                ) from exc
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
            if job.job_id in seen_ids:
                raise TraceFormatError(
                    f"{path}:{lineno}: duplicate job_id {job.job_id}"
                )
            seen_ids.add(job.job_id)
            yield job


def load_trace(path: Union[str, Path]) -> List[TraceJob]:
    """Read a JSON-lines trace written by :func:`save_trace` (or by users).

    Materialises :func:`iter_trace`; same validation, same errors.
    """
    return list(iter_trace(path))


@dataclass(frozen=True)
class TraceScan:
    """Bounded-memory statistics from one streaming pass over a trace file.

    This is the calibration pre-pass of streaming replay: sharded replay
    needs the trace's *total* job count (to cut the same arrival windows the
    batch path cuts) and its *mean* slowest-to-median ratio (every shard
    replays under the full trace's observed straggler severity) before the
    first shard simulates.  The statistics themselves accumulate in O(1)
    memory; the pass as a whole retains only the duplicate-id check's set of
    job ids (O(#jobs) ints — never task payloads).  The ratio sum folds
    left-to-right exactly like ``stats.mean`` over the full list, so the
    derived straggler cap is float-identical to the batch path's.
    """

    num_jobs: int
    mean_slowest_to_median: float
    #: True when (arrival_time, job_id) is non-decreasing in file order —
    #: the precondition for lazily cutting the same shards batch replay cuts
    #: after sorting.
    arrival_sorted: bool


def scan_jobs(jobs: Iterable[TraceJob], source: str = "trace") -> TraceScan:
    """Fold the calibration statistics over any stream of trace jobs.

    The single definition of the streaming calibration pass: O(1) memory, the
    ratio sum folds left-to-right exactly like ``stats.mean`` over a full
    list.  :func:`scan_trace` applies it to a JSONL file; streaming replay of
    a *generated* trace (the cluster tier) applies it to the generator
    directly — same statistics, same floats, no file required.  ``source``
    only names the stream in the empty-input error.
    """
    num_jobs = 0
    ratio_sum = 0.0
    arrival_sorted = True
    previous_key = None
    for job in jobs:
        num_jobs += 1
        ratio_sum += job.slowest_to_median_ratio
        key = (job.arrival_time, job.job_id)
        if previous_key is not None and key < previous_key:
            arrival_sorted = False
        previous_key = key
    if num_jobs == 0:
        raise ValueError(f"cannot scan an empty trace: {source}")
    return TraceScan(
        num_jobs=num_jobs,
        mean_slowest_to_median=ratio_sum / num_jobs,
        arrival_sorted=arrival_sorted,
    )


def scan_trace(path: Union[str, Path]) -> TraceScan:
    """One streaming pass over a JSONL trace: count, severity, sortedness.

    Raises :class:`TraceFormatError` for malformed records (the pass shares
    :func:`iter_trace`'s validation — including the duplicate-id guard, so
    ``--stream``/``--stream-specs`` replay rejects the same malformed traces
    batch replay rejects before any simulation starts) and ``ValueError``
    for an empty trace.
    """
    return scan_jobs(iter_trace(path), source=str(path))

"""Synthetic workload generation calibrated to the paper's trace statistics.

The generator produces :class:`~repro.core.job.JobSpec` lists plus per-job
metadata (deadline slack factor, error bound, intended wave count) that the
experiment harness needs for the Figure 6 style breakdowns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.bounds import ApproximationBound
from repro.core.job import JobPhaseSpec, JobSpec
from repro.utils.rng import RngStream
from repro.workload.profiles import (
    FrameworkProfile,
    WorkloadProfile,
    framework_profile,
    workload_profile,
)

#: Supported bound mixes.
BOUND_DEADLINE = "deadline"
BOUND_ERROR = "error"
BOUND_EXACT = "exact"
BOUND_MIXED = "mixed"

#: Supported arrival processes.
ARRIVAL_POISSON = "poisson"
ARRIVAL_SEQUENTIAL = "sequential"


def validate_workload_knobs(
    bound_kind: str,
    dag_length: int,
    intermediate_task_fraction: float,
    deadline_slack_range: Tuple[float, float],
    error_range: Tuple[float, float],
) -> None:
    """Validate the knobs shared by synthetic generation and trace replay.

    One definition keeps :class:`WorkloadConfig` and
    :class:`~repro.workload.trace_replay.TraceReplayConfig` from drifting:
    a config accepted by one pipeline is accepted by the other.
    """
    if bound_kind not in (BOUND_DEADLINE, BOUND_ERROR, BOUND_EXACT, BOUND_MIXED):
        raise ValueError(f"unknown bound_kind {bound_kind!r}")
    if dag_length < 1:
        raise ValueError("dag_length must be at least 1")
    if not 0.0 < intermediate_task_fraction <= 1.0:
        raise ValueError("intermediate_task_fraction must be in (0, 1]")
    low, high = deadline_slack_range
    if not 0.0 < low <= high:
        raise ValueError("deadline_slack_range must be positive and ordered")
    low, high = error_range
    if not 0.0 <= low <= high < 1.0:
        raise ValueError("error_range must lie in [0, 1) and be ordered")


def target_waves(rng: RngStream, size_bin: str) -> int:
    """Intended wave count per job size (§2.1): small jobs fit in one or two
    waves, large jobs in many.  Shared by the synthetic generator and trace
    replay so both assign identical slot caps for a given size bin."""
    if size_bin == "small":
        return rng.randint(1, 2)
    if size_bin == "medium":
        return rng.randint(2, 4)
    return rng.randint(3, 6)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic workload.

    ``size_scale`` shrinks task counts uniformly (useful to keep benchmark
    runtimes reasonable while preserving the small/medium/large mix), and
    ``max_tasks_per_job`` caps the largest jobs for the same reason.
    """

    workload: str = "facebook"
    framework: str = "hadoop"
    num_jobs: int = 100
    bound_kind: str = BOUND_MIXED
    deadline_slack_range: Tuple[float, float] = (0.02, 0.20)
    error_range: Tuple[float, float] = (0.05, 0.30)
    dag_length: int = 2
    intermediate_task_fraction: float = 0.10
    size_scale: float = 1.0
    max_tasks_per_job: Optional[int] = None
    arrival_mode: str = ARRIVAL_POISSON
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        validate_workload_knobs(
            self.bound_kind,
            self.dag_length,
            self.intermediate_task_fraction,
            self.deadline_slack_range,
            self.error_range,
        )
        if self.size_scale <= 0:
            raise ValueError("size_scale must be positive")
        if self.arrival_mode not in (ARRIVAL_POISSON, ARRIVAL_SEQUENTIAL):
            raise ValueError(f"unknown arrival_mode {self.arrival_mode!r}")

    @property
    def workload_profile(self) -> WorkloadProfile:
        return workload_profile(self.workload)

    @property
    def framework_profile(self) -> FrameworkProfile:
        return framework_profile(self.framework)


@dataclass
class JobMetadata:
    """Per-job synthesis metadata the experiment harness bins on."""

    job_id: int
    size_bin: str
    num_input_tasks: int
    target_waves: int
    deadline_slack_percent: Optional[float] = None
    error_percent: Optional[float] = None
    ideal_duration: float = 0.0


@dataclass
class GeneratedWorkload:
    """A workload: job specs plus the metadata used for figure breakdowns."""

    config: WorkloadConfig
    job_specs: List[JobSpec] = field(default_factory=list)
    metadata: Dict[int, JobMetadata] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.job_specs)

    def specs(self) -> List[JobSpec]:
        return list(self.job_specs)

    def metadata_for(self, job_id: int) -> JobMetadata:
        return self.metadata[job_id]


class SyntheticWorkloadGenerator:
    """Generates workloads matching the published trace characteristics."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self._workload = config.workload_profile
        self._framework = config.framework_profile
        self._rng = RngStream(config.seed, f"workload/{config.workload}/{config.framework}")

    # -- job sizing ----------------------------------------------------------------

    def _pick_bin(self, rng: RngStream) -> Tuple[str, Tuple[int, int]]:
        profile = self._workload
        labels = ("small", "medium", "large")
        ranges = (profile.small_tasks, profile.medium_tasks, profile.large_tasks)
        label = rng.weighted_choice(labels, profile.bin_probabilities)
        return label, ranges[labels.index(label)]

    def _task_count(self, rng: RngStream, task_range: Tuple[int, int]) -> int:
        low, high = task_range
        count = rng.randint(low, high)
        count = max(3, int(round(count * self.config.size_scale)))
        if self.config.max_tasks_per_job is not None:
            count = min(count, self.config.max_tasks_per_job)
        return count

    def _target_waves(self, rng: RngStream, size_bin: str) -> int:
        return target_waves(rng, size_bin)

    # -- task works ------------------------------------------------------------------

    def _input_task_works(self, rng: RngStream, count: int) -> List[float]:
        """Input task works: near-equal data splits with mild log-normal jitter.

        The paper normalises task durations by input size (§2.2, footnote 2),
        i.e. input tasks read roughly equal splits; the heavy-tailed
        *duration* skew of Figure 3 comes from runtime straggling, which the
        simulator's straggler model supplies per copy.
        """
        profile = self._workload
        median_work = self._framework.median_task_work
        sigma = profile.work_jitter_sigma
        works = []
        for _ in range(count):
            multiplier = rng.lognormal(0.0, sigma) if sigma > 0 else 1.0
            works.append(median_work * multiplier)
        return works

    def _intermediate_task_works(self, rng: RngStream, input_count: int) -> List[float]:
        count = max(1, int(round(self.config.intermediate_task_fraction * input_count)))
        median_work = self._framework.median_task_work
        return [median_work * rng.uniform(0.5, 1.5) for _ in range(count)]

    # -- bounds -----------------------------------------------------------------------

    def _bound_kind_for_job(self, rng: RngStream) -> str:
        kind = self.config.bound_kind
        if kind != BOUND_MIXED:
            return kind
        return BOUND_DEADLINE if rng.bernoulli(0.5) else BOUND_ERROR

    def _make_bound(
        self, rng: RngStream, kind: str, ideal_duration: float, metadata: JobMetadata
    ) -> ApproximationBound:
        if kind == BOUND_DEADLINE:
            low, high = self.config.deadline_slack_range
            slack = rng.uniform(low, high)
            metadata.deadline_slack_percent = slack * 100.0
            return ApproximationBound.with_deadline(ideal_duration * (1.0 + slack))
        if kind == BOUND_EXACT:
            metadata.error_percent = 0.0
            return ApproximationBound.exact()
        low, high = self.config.error_range
        error = rng.uniform(low, high)
        metadata.error_percent = error * 100.0
        return ApproximationBound.with_error(error)

    # -- generation --------------------------------------------------------------------

    @staticmethod
    def _ideal_duration(phases: List[JobPhaseSpec], slots: int) -> float:
        """Ideal duration per §6.1: every task at the phase's median work."""
        total = 0.0
        for phase in phases:
            works = sorted(phase.task_works)
            mid = len(works) // 2
            median_work = works[mid] if len(works) % 2 == 1 else 0.5 * (
                works[mid - 1] + works[mid]
            )
            total += math.ceil(phase.task_count / slots) * median_work
        return total

    def generate(self) -> GeneratedWorkload:
        """Generate the configured number of jobs."""
        result = GeneratedWorkload(config=self.config)
        arrival_time = 0.0
        for job_id in range(self.config.num_jobs):
            job_rng = self._rng.spawn(f"job/{job_id}")
            size_bin, task_range = self._pick_bin(job_rng)
            input_count = self._task_count(job_rng, task_range)
            waves = self._target_waves(job_rng, size_bin)
            max_slots = max(1, math.ceil(input_count / waves))

            phases = [
                JobPhaseSpec(
                    phase_index=0,
                    task_works=tuple(self._input_task_works(job_rng, input_count)),
                )
            ]
            for phase_index in range(1, self.config.dag_length):
                phases.append(
                    JobPhaseSpec(
                        phase_index=phase_index,
                        task_works=tuple(
                            self._intermediate_task_works(job_rng, input_count)
                        ),
                    )
                )

            ideal = self._ideal_duration(phases, max_slots)
            metadata = JobMetadata(
                job_id=job_id,
                size_bin=size_bin,
                num_input_tasks=input_count,
                target_waves=waves,
                ideal_duration=ideal,
            )
            kind = self._bound_kind_for_job(job_rng)
            bound = self._make_bound(job_rng, kind, ideal, metadata)

            spec = JobSpec(
                job_id=job_id,
                arrival_time=arrival_time,
                phases=tuple(phases),
                bound=bound,
                name=f"{self.config.workload}-{self.config.framework}-{size_bin}-{job_id}",
                max_slots=max_slots,
            )
            result.job_specs.append(spec)
            result.metadata[job_id] = metadata

            if self.config.arrival_mode == ARRIVAL_POISSON:
                arrival_time += job_rng.expovariate(
                    1.0 / self._workload.mean_interarrival
                )
            else:
                # Sequential: leave generous room so jobs do not overlap.
                arrival_time += ideal * 4.0 + 10.0
        return result


def generate_workload(config: WorkloadConfig) -> GeneratedWorkload:
    """Convenience wrapper used throughout the experiment harness."""
    return SyntheticWorkloadGenerator(config).generate()

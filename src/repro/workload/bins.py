"""Binning helpers matching the paper's reporting conventions (§6.1, Figure 6).

* Job-size bins: small (< 50 tasks), medium (51–500), large (> 500).
* Deadline bins: the deadline's slack factor over the ideal duration,
  reported in 2–5 %, 6–10 %, 11–15 %, 16–20 % buckets (Figure 6a).
* Error bins: 5–10 %, 11–15 %, 16–20 %, 21–25 %, 26–30 % (Figure 6b).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.job import job_bin_label

#: Job-size bins, as (label, lower inclusive, upper inclusive) on task count.
JOB_SIZE_BINS: Tuple[Tuple[str, int, int], ...] = (
    ("small", 1, 50),
    ("medium", 51, 500),
    ("large", 501, 10_000_000),
)

#: Deadline slack-factor bins of Figure 6a, in percent over the ideal duration.
DEADLINE_BINS: Tuple[Tuple[str, float, float], ...] = (
    ("2-5", 2.0, 5.0),
    ("6-10", 6.0, 10.0),
    ("11-15", 11.0, 15.0),
    ("16-20", 16.0, 20.0),
)

#: Error-bound bins of Figure 6b, in percent.
ERROR_BINS: Tuple[Tuple[str, float, float], ...] = (
    ("5-10", 5.0, 10.0),
    ("11-15", 11.0, 15.0),
    ("16-20", 16.0, 20.0),
    ("21-25", 21.0, 25.0),
    ("26-30", 26.0, 30.0),
)


def deadline_bin_label(slack_percent: float) -> str:
    """Bin label for a deadline slack factor given in percent."""
    for label, low, high in DEADLINE_BINS:
        if low <= slack_percent <= high:
            return label
    if slack_percent < DEADLINE_BINS[0][1]:
        return DEADLINE_BINS[0][0]
    return DEADLINE_BINS[-1][0]


def error_bin_label(error_percent: float) -> str:
    """Bin label for an error bound given in percent."""
    for label, low, high in ERROR_BINS:
        if low <= error_percent <= high:
            return label
    if error_percent < ERROR_BINS[0][1]:
        return ERROR_BINS[0][0]
    return ERROR_BINS[-1][0]


def group_by_job_bin(task_counts: Sequence[int]) -> Dict[str, List[int]]:
    """Group task counts by the paper's job-size bins (mostly for tests)."""
    grouped: Dict[str, List[int]] = {"small": [], "medium": [], "large": []}
    for count in task_counts:
        grouped[job_bin_label(count)].append(count)
    return grouped

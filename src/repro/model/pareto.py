"""Closed-form Pareto quantities used by the Appendix A model.

Task sizes are modelled as Pareto(x_m, β): ``P(τ > x) = (x_m / x) ** β`` for
``x >= x_m``.  The three quantities the model needs are the mean, the mean of
the minimum of k i.i.d. copies (which is again Pareto with shape kβ), and the
mean residual life ``E[τ - ω | τ > ω]`` which for a Pareto grows linearly in
ω — the formal reason heavy tails make speculation worthwhile.
"""

from __future__ import annotations

import math


def _validate(shape: float, scale: float) -> None:
    if shape <= 0:
        raise ValueError("shape must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")


def pareto_mean(shape: float, scale: float) -> float:
    """E[τ] for Pareto(scale, shape); infinite when shape <= 1."""
    _validate(shape, scale)
    if shape <= 1.0:
        return math.inf
    return shape * scale / (shape - 1.0)


def pareto_survival(x: float, shape: float, scale: float) -> float:
    """P(τ > x)."""
    _validate(shape, scale)
    if x <= scale:
        return 1.0
    return (scale / x) ** shape


def pareto_min_mean(k: int, shape: float, scale: float) -> float:
    """E[min(τ1, ..., τk)] — the minimum of k i.i.d. Pareto is Pareto(k·β)."""
    _validate(shape, scale)
    if k < 1:
        raise ValueError("k must be at least 1")
    combined_shape = k * shape
    if combined_shape <= 1.0:
        return math.inf
    return combined_shape * scale / (combined_shape - 1.0)


def conditional_residual(omega: float, shape: float, scale: float) -> float:
    """Mean residual life E[τ - ω | τ > ω].

    For ω >= scale this equals ω / (β - 1): it *grows* with ω when β < 2,
    which is Guideline 1's justification for speculating on long-running
    tasks.  For ω below the scale the residual is computed against the full
    distribution.
    """
    _validate(shape, scale)
    if omega < 0:
        raise ValueError("omega must be non-negative")
    if shape <= 1.0:
        return math.inf
    if omega <= scale:
        # E[τ] - ω, but never below the residual at the scale point.
        return max(pareto_mean(shape, scale) - omega, scale / (shape - 1.0))
    return omega / (shape - 1.0)


def truncated_pareto_mean(shape: float, scale: float, cap: float) -> float:
    """E[min(τ, cap)] — used when comparing the model against the simulator."""
    _validate(shape, scale)
    if cap <= scale:
        raise ValueError("cap must exceed the scale")
    # repro: allow[DET004] analytic special case: the closed form divides by (shape - 1)
    if shape == 1.0:
        body = scale * (1.0 + math.log(cap / scale))
    else:
        body = (shape * scale / (shape - 1.0)) * (
            1.0 - (scale / cap) ** (shape - 1.0)
        )
    return body + cap * (scale / cap) ** shape

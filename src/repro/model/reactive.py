"""Reactive speculation model: the ω-policy family of Appendix A.2 (Figure 4).

A reactive policy waits until a copy has run ω time before launching a
(single) speculative duplicate.  GS and RAS are particular choices of ω:

* GS speculates as soon as a fresh copy looks no worse than the remaining
  time, i.e. ω solves ``E[τ] = E[τ - ω | τ > ω]``;
* RAS additionally demands a resource saving, i.e. ω solves
  ``2·E[τ] = E[τ - ω | τ > ω]``.

For Pareto(x_m, β) task sizes these have closed forms ω_GS = β·x_m and
ω_RAS = 2·β·x_m (using the linear mean-residual-life of a Pareto).

Figure 4 plots the job response time of the ω-policy, normalised by the best
ω, for jobs of 1–5 waves.  The closed form of equation (3) is awkward to
evaluate at the final-wave boundary, so — like the paper, which evaluates it
numerically — we evaluate the model by Monte-Carlo simulation of the
wave-based schedule it assumes: S slots, T = W·S tasks, one speculative copy
per task once it has run ω, last wave speculated immediately.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.model.pareto import conditional_residual, pareto_mean
from repro.utils.rng import RngStream
from repro.utils.stats import mean


def gs_omega(shape: float, scale: float = 1.0) -> float:
    """ω at which GS starts speculating: E[τ] = E[τ - ω | τ > ω]."""
    if shape <= 1.0:
        raise ValueError("the mean is infinite for shape <= 1; ω undefined")
    return shape * scale


def ras_omega(shape: float, scale: float = 1.0) -> float:
    """ω at which RAS starts speculating: 2·E[τ] = E[τ - ω | τ > ω]."""
    if shape <= 1.0:
        raise ValueError("the mean is infinite for shape <= 1; ω undefined")
    return 2.0 * shape * scale


@dataclass(frozen=True)
class ReactiveModelConfig:
    """Parameters of the Monte-Carlo evaluation of the ω-policy."""

    shape: float = 1.259
    scale: float = 1.0
    slots: int = 20
    trials: int = 200
    cap: float = 200.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shape <= 1.0:
            raise ValueError("shape must exceed 1 for finite response times")
        if self.scale <= 0 or self.slots <= 0 or self.trials <= 0:
            raise ValueError("scale, slots and trials must be positive")
        if self.cap <= self.scale:
            raise ValueError("cap must exceed the scale")


def _simulate_once(
    omega: float, waves: int, config: ReactiveModelConfig, rng: RngStream
) -> float:
    """One Monte-Carlo run of the wave-based ω-policy; returns the makespan.

    The schedule follows the model's assumptions: tasks are launched wave by
    wave on S slots; a running task receives one speculative copy once its
    age reaches ω (taking the next free slot, ahead of unscheduled tasks); in
    the final wave tasks are speculated immediately if slots are spare.
    """
    total_tasks = waves * config.slots

    def draw() -> float:
        return min(rng.pareto(config.shape, config.scale), config.cap)

    # Event-driven simulation over slot-free times.
    free_slots = config.slots
    now = 0.0
    next_task = 0
    completions = 0
    # Heap of (finish_time, task_id, kind); kind 0 = original, 1 = duplicate.
    running: List[Tuple[float, int, int]] = []
    finished = [False] * total_tasks
    duplicated = [False] * total_tasks
    outstanding: List[set] = [set() for _ in range(total_tasks)]
    cancelled: set = set()
    # Pending speculation requests (task ids whose age passed ω, awaiting slot).
    spec_queue: List[Tuple[float, int]] = []

    def launch(task_id: int, kind: int, at: float) -> None:
        nonlocal free_slots
        free_slots -= 1
        outstanding[task_id].add(kind)
        heapq.heappush(running, (at + draw(), task_id, kind))
        if kind == 0:
            heapq.heappush(spec_queue, (at + omega, task_id))
        else:
            duplicated[task_id] = True

    while completions < total_tasks:
        # Fill slots.  A speculation trigger that is due takes the slot ahead
        # of unscheduled tasks (the copy has already waited ω); in the final
        # wave spare slots are used for speculation immediately (Guideline 2).
        progressed = True
        while free_slots > 0 and progressed:
            progressed = False
            in_final_wave = next_task >= total_tasks
            if spec_queue and (in_final_wave or spec_queue[0][0] <= now):
                trigger_time, task_id = heapq.heappop(spec_queue)
                if not finished[task_id] and not duplicated[task_id]:
                    launch(task_id, 1, max(now, trigger_time))
                progressed = True
                continue
            if next_task < total_tasks:
                launch(next_task, 0, now)
                next_task += 1
                progressed = True
        if not running:
            # Nothing running: jump to the next speculation trigger.
            if spec_queue:
                now = max(now, spec_queue[0][0])
                continue
            break
        finish_time, task_id, kind = heapq.heappop(running)
        now = max(now, finish_time)
        if (task_id, kind) in cancelled:
            # Its sibling finished earlier; the slot was freed back then.
            cancelled.discard((task_id, kind))
            continue
        free_slots += 1
        outstanding[task_id].discard(kind)
        if not finished[task_id]:
            finished[task_id] = True
            completions += 1
            # Kill the losing sibling copies and free their slots now.
            for sibling in list(outstanding[task_id]):
                cancelled.add((task_id, sibling))
                outstanding[task_id].discard(sibling)
                free_slots += 1
    return now


def reactive_response_time(
    omega: float, waves: int, config: ReactiveModelConfig
) -> float:
    """Mean makespan of a W-wave job under the ω-policy (Monte Carlo)."""
    if omega < 0:
        raise ValueError("omega must be non-negative")
    if waves < 1:
        raise ValueError("waves must be at least 1")
    rng = RngStream(config.seed, f"reactive/{omega:.4f}/{waves}")
    return mean(
        [_simulate_once(omega, waves, config, rng.spawn(str(i))) for i in range(config.trials)]
    )


def response_time_ratio_curve(
    omegas: Sequence[float],
    waves_list: Sequence[int],
    config: ReactiveModelConfig,
) -> Dict[int, List[Tuple[float, float]]]:
    """Figure 4: response time vs ω, normalised by the best ω, per wave count.

    Returns ``{waves: [(omega, ratio), ...]}`` where ratio 1.0 is the best
    policy in the sweep for that wave count.
    """
    curves: Dict[int, List[Tuple[float, float]]] = {}
    for waves in waves_list:
        times = [(omega, reactive_response_time(omega, waves, config)) for omega in omegas]
        best = min(time for _, time in times)
        curves[waves] = [(omega, time / best) for omega, time in times]
    return curves


def closed_form_early_wave_cost(omega: float, shape: float, scale: float) -> float:
    """Expected slot-time one task consumes under the ω-policy (eq. 3, line 1).

    ``E[τ|τ<ω]·P(τ<ω) + (2·E[Z-ω|τ>ω] + ω)·P(τ>ω)`` with Z = min(τ1, τ2+ω).
    Used by unit tests to sanity-check the Monte-Carlo evaluation and by the
    blow-up analysis in the docs.
    """
    if shape <= 1.0:
        raise ValueError("shape must exceed 1")
    if omega <= scale:
        # Speculating before the scale point duplicates everything.
        return 2.0 * pareto_mean(2.0 * shape, scale) + omega
    survival = (scale / omega) ** shape
    mean_total = pareto_mean(shape, scale)
    # E[τ | τ > ω] = ω + mean residual; E[τ·1(τ>ω)] = survival · that.
    mean_above = survival * (omega + conditional_residual(omega, shape, scale))
    mean_below = (mean_total - mean_above) / max(1e-12, 1.0 - survival)
    # Z = min(τ1, τ2 + ω) given τ1 > ω: residual of τ1 is Pareto(β, ω) by the
    # Pareto's scaling property, τ2 is a fresh Pareto(β, x_m); approximate
    # E[Z - ω | τ1 > ω] by the mean of the minimum of those two.
    residual_mean = conditional_residual(omega, shape, scale)
    fresh_mean = mean_total
    min_mean = 1.0 / (1.0 / max(residual_mean, 1e-12) + 1.0 / max(fresh_mean, 1e-12))
    return mean_below * (1.0 - survival) + (2.0 * min_mean + omega) * survival


def number_of_waves(total_tasks: int, slots: int) -> float:
    """W = T / S, the model's (fractional) wave count."""
    if slots <= 0:
        raise ValueError("slots must be positive")
    return total_tasks / slots


def omega_grid(shape: float, scale: float = 1.0, points: int = 11, span: float = 5.0) -> List[float]:
    """A grid of ω values spanning [0, span·scale·β], matching Figure 4's x-axis."""
    if points < 2:
        raise ValueError("points must be at least 2")
    upper = span * scale * max(1.0, shape)
    return [upper * i / (points - 1) for i in range(points)]

"""Hill estimator of the Pareto tail index (Figure 3).

The paper estimates β ≈ 1.259 from a Hill plot of the Facebook task
durations: for each number of upper order statistics k, the Hill estimate is

    β̂(k) = k / Σ_{i=1}^{k} [ ln x_(n-i+1) - ln x_(n-k) ]

and a flat region of the plot identifies the tail index.  A Hill plot is more
robust than regressing a log-log CCDF (footnote 3).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.utils.stats import median


def hill_estimates(
    samples: Sequence[float], max_fraction: float = 0.5, min_k: int = 5
) -> List[Tuple[int, float]]:
    """Hill estimates β̂(k) for k = min_k .. max_fraction·n.

    Returns a list of ``(k, beta_hat)`` pairs — the Hill plot's x and y axes.
    """
    positive = sorted(x for x in samples if x > 0)
    n = len(positive)
    if n < max(min_k + 1, 10):
        raise ValueError("need at least 10 positive samples for a Hill plot")
    if not 0.0 < max_fraction <= 1.0:
        raise ValueError("max_fraction must be in (0, 1]")
    logs = [math.log(x) for x in positive]
    max_k = max(min_k, int(max_fraction * n))
    estimates: List[Tuple[int, float]] = []
    # Running sum of the top-k log values, built from the largest downwards.
    top_log_sum = 0.0
    for k in range(1, max_k + 1):
        top_log_sum += logs[n - k]
        if k < min_k:
            continue
        threshold_log = logs[n - k - 1] if k < n else logs[0]
        denominator = top_log_sum - k * threshold_log
        if denominator <= 0:
            continue
        estimates.append((k, k / denominator))
    if not estimates:
        raise ValueError("could not compute any Hill estimate (degenerate data)")
    return estimates


def estimate_tail_index(
    samples: Sequence[float],
    plateau_range: Tuple[float, float] = (0.05, 0.35),
) -> float:
    """Point estimate of β: the median Hill estimate over a plateau region.

    ``plateau_range`` selects which fractions of the sample (as upper order
    statistics) are considered the flat region; the defaults cover the region
    the paper reads its β = 1.259 from.
    """
    estimates = hill_estimates(samples)
    n = len([x for x in samples if x > 0])
    low = max(1, int(plateau_range[0] * n))
    high = max(low + 1, int(plateau_range[1] * n))
    in_range = [beta for k, beta in estimates if low <= k <= high]
    if not in_range:
        in_range = [beta for _, beta in estimates]
    return median(in_range)

"""Proactive speculation model: equation (1) and Theorem 1 (Appendix A.1).

A proactive policy launches ``k(x(t))`` copies of every task while the job
has remaining work ``x(t)``.  Equation (1) approximates the rate at which
work completes as the product of a capacity term and a "blow-up factor" —
the ratio of work done without duplication to work done with duplication.
Theorem 1 gives the duration-minimising ``k(x(t))`` for Pareto task sizes,
which collapses to Guidelines 1 and 2:

* early waves: speculate (with at most ⌈2/β⌉ ≈ 2 copies) only when the tail
  is heavy enough (β < 2);
* last wave: replicate as much as the spare capacity allows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.pareto import pareto_mean, pareto_min_mean


def blow_up_factor(k: int, shape: float, scale: float = 1.0) -> float:
    """E[τ] / (k · E[min(τ1..τk)]): work saved (>1) or wasted (<1) by k copies."""
    if k < 1:
        raise ValueError("k must be at least 1")
    numerator = pareto_mean(shape, scale)
    denominator = k * pareto_min_mean(k, shape, scale)
    if math.isinf(numerator) and math.isinf(denominator):
        # Both infinite only when k·β <= 1; treat as neutral.
        return 1.0
    if math.isinf(denominator):
        return 0.0
    if math.isinf(numerator):
        return math.inf
    return numerator / denominator


def optimal_copies(shape: float) -> int:
    """σ of Theorem 1: the copy count used during the early waves.

    ``max(2/β, 1)`` rounded up to a whole number of copies: 2 when the task
    size distribution has infinite variance (β < 2), otherwise 1 (no early
    speculation).
    """
    if shape <= 0:
        raise ValueError("shape must be positive")
    return max(1, math.ceil(2.0 / shape)) if shape < 2.0 else 1


@dataclass(frozen=True)
class ProactiveDecision:
    """The replication level Theorem 1 prescribes at one instant."""

    copies: int
    regime: str  # "early", "transition" or "last-wave"


def proactive_policy(
    remaining_fraction: float,
    total_tasks: int,
    slots: int,
    shape: float,
) -> ProactiveDecision:
    """Theorem 1's k(x(t)) for a job with ``total_tasks`` tasks and ``slots`` slots.

    ``remaining_fraction`` is x(t)/x, the fraction of work still outstanding.
    The three cases of equation (2):

    * many tasks remain (``remaining · T · σ >= S``): use σ copies,
    * a middling number remains: split the capacity evenly (S / remaining tasks),
    * fewer tasks than one wave remain: use all S slots per task.
    """
    if not 0.0 <= remaining_fraction <= 1.0:
        raise ValueError("remaining_fraction must be in [0, 1]")
    if total_tasks <= 0 or slots <= 0:
        raise ValueError("total_tasks and slots must be positive")
    sigma = optimal_copies(shape)
    remaining_tasks = remaining_fraction * total_tasks
    if remaining_tasks * sigma >= slots:
        return ProactiveDecision(copies=sigma, regime="early")
    if remaining_tasks >= 1.0:
        copies = max(1, int(slots / max(remaining_tasks, 1e-9)))
        return ProactiveDecision(copies=copies, regime="transition")
    return ProactiveDecision(copies=slots, regime="last-wave")


def service_rate(
    remaining_fraction: float,
    total_tasks: int,
    slots: int,
    shape: float,
    scale: float,
    copies: int,
) -> float:
    """Equation (1): approximate rate at which work completes.

    The capacity term is the fraction of the (normalised) cluster the job can
    usefully occupy with ``copies`` copies per remaining task; the second
    term is the blow-up factor.
    """
    if copies < 1:
        raise ValueError("copies must be at least 1")
    remaining_tasks = remaining_fraction * total_tasks
    usable_slots = min(float(slots), max(remaining_tasks, 0.0) * copies)
    capacity = usable_slots / slots if slots > 0 else 0.0
    return capacity * blow_up_factor(copies, shape, scale)

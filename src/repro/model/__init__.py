"""Analytic model of speculation (Appendix A) and tail estimation (Figure 3).

* :mod:`repro.model.pareto` — closed-form Pareto quantities the model needs
  (means, minima of i.i.d. copies, conditional residuals).
* :mod:`repro.model.hill` — the Hill estimator of the tail index (Figure 3).
* :mod:`repro.model.proactive` — Theorem 1: the optimal proactive replication
  level k(x(t)) and the blow-up factor of equation (1).
* :mod:`repro.model.reactive` — the reactive ω-policy model of equation (3),
  evaluated by Monte-Carlo wave simulation, with the GS / RAS ω values;
  regenerates Figure 4.
"""

from repro.model.hill import hill_estimates, estimate_tail_index
from repro.model.pareto import (
    conditional_residual,
    pareto_mean,
    pareto_min_mean,
    pareto_survival,
)
from repro.model.proactive import blow_up_factor, optimal_copies, proactive_policy
from repro.model.reactive import (
    ReactiveModelConfig,
    gs_omega,
    ras_omega,
    reactive_response_time,
    response_time_ratio_curve,
)

__all__ = [
    "hill_estimates",
    "estimate_tail_index",
    "pareto_mean",
    "pareto_min_mean",
    "pareto_survival",
    "conditional_residual",
    "blow_up_factor",
    "optimal_copies",
    "proactive_policy",
    "ReactiveModelConfig",
    "gs_omega",
    "ras_omega",
    "reactive_response_time",
    "response_time_ratio_curve",
]

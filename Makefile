# Convenience targets; the logic lives in scripts/check.sh so CI and
# humans run exactly the same commands.

.PHONY: test bench-smoke lint check

test:
	./scripts/check.sh test

bench-smoke:
	./scripts/check.sh bench-smoke

lint:
	./scripts/check.sh lint

check:
	./scripts/check.sh all

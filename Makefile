# Convenience targets; the logic lives in scripts/check.sh so CI and
# humans run exactly the same commands.

.PHONY: test bench-smoke bench-gate lint check ingest-smoke cluster-replay

test:
	./scripts/check.sh test

bench-smoke:
	./scripts/check.sh bench-smoke

bench-gate:
	./scripts/check.sh bench-gate

lint:
	./scripts/check.sh lint

ingest-smoke:
	./scripts/check.sh ingest-smoke

# The large-scale leg: CLUSTER_JOBS (default 20000) generated jobs replayed
# fully streaming at workers 1 and 4; the scheduled CI job runs this at
# CLUSTER_JOBS=100000.
cluster-replay:
	./scripts/check.sh cluster-replay

check:
	./scripts/check.sh all

# Convenience targets; the logic lives in scripts/check.sh so CI and
# humans run exactly the same commands.

.PHONY: test bench-smoke bench-gate lint check

test:
	./scripts/check.sh test

bench-smoke:
	./scripts/check.sh bench-smoke

bench-gate:
	./scripts/check.sh bench-gate

lint:
	./scripts/check.sh lint

check:
	./scripts/check.sh all

# Convenience targets; the logic lives in scripts/check.sh so CI and
# humans run exactly the same commands.

.PHONY: test bench-smoke bench-gate analyze lint check ingest-smoke service-smoke cache-smoke cluster-replay

test:
	./scripts/check.sh test

bench-smoke:
	./scripts/check.sh bench-smoke

bench-gate:
	./scripts/check.sh bench-gate

# The repo's own determinism & safety linter (repro.analysis): stdlib-only
# AST rules enforcing the invariants the replay digest matrix checks
# dynamically.  Fails on any unsuppressed finding.
analyze:
	./scripts/check.sh analyze

lint:
	./scripts/check.sh lint

ingest-smoke:
	./scripts/check.sh ingest-smoke

# End-to-end smoke of the always-on replay service: real server process,
# SERVICE_TENANTS concurrent tenants, digest parity, overload rejections.
service-smoke:
	./scripts/check.sh service-smoke

# Content-addressed replay cache smoke: cold/warm digest parity plus the
# forced-corruption miss path, ending with `cache stats` and `cache verify`.
cache-smoke:
	./scripts/check.sh cache-smoke

# The large-scale leg: CLUSTER_JOBS (default 20000) generated jobs replayed
# fully streaming at workers 1 and 4; the scheduled CI job runs this at
# CLUSTER_JOBS=100000.
cluster-replay:
	./scripts/check.sh cluster-replay

check:
	./scripts/check.sh all
